// Package microfab reproduces the system of "Throughput optimization for
// micro-factories subject to task and machine failures" (Benoit, Dobrila,
// Nicod, Philippe — INRIA RR-7479, 2010): mapping typed tasks of an
// in-tree application onto machines so as to maximize the production
// throughput when every (task, machine) couple has its own transient
// failure rate.
//
// The package is a facade over the internal packages; it exposes the model
// (applications, platforms, failure matrices, mappings), the paper's six
// heuristics (H1, H2, H3, H4, H4w, H4f), the exact solvers (MIP branch and
// bound, DFS search, polynomial one-to-one algorithms), the local-search
// refinement layer (hill climbing and simulated annealing over the
// incremental evaluator — Solve("ls"), Solve("anneal"), Polish), the
// discrete-event simulator and the experiment drivers that regenerate
// every figure of the paper's evaluation.
//
// Quick start:
//
//	in, _ := microfab.GenerateChain(microfab.CampaignParams(20, 4, 10), 42)
//	mp, _ := microfab.Solve(in, "H4w", 0)
//	ev, _ := microfab.Evaluate(in, mp)
//	fmt.Printf("period %.0f ms, throughput %.4f products/s\n",
//		ev.Period, ev.Throughput*1000)
package microfab

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"microfab/internal/app"
	"microfab/internal/core"
	"microfab/internal/exact"
	"microfab/internal/experiments"
	"microfab/internal/failure"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/milp"
	"microfab/internal/oto"
	"microfab/internal/platform"
	"microfab/internal/search"
	"microfab/internal/sim"
)

// Model types, re-exported so callers never import internal packages.
type (
	// Application is the in-tree of typed tasks.
	Application = app.Application
	// Builder assembles applications incrementally.
	Builder = app.Builder
	// Task is one operation applied to a product.
	Task = app.Task
	// TaskID indexes tasks (0-based).
	TaskID = app.TaskID
	// TypeID indexes task types (0-based).
	TypeID = app.TypeID
	// MachineID indexes machines (0-based).
	MachineID = platform.MachineID
	// Platform is the machine set with execution times.
	Platform = platform.Platform
	// FailureMatrix holds f[i][u], the loss probability per couple.
	FailureMatrix = failure.Matrix
	// Instance bundles application, platform and failures.
	Instance = core.Instance
	// Mapping is the allocation of tasks to machines.
	Mapping = core.Mapping
	// SplitMapping allows one task's workload on several machines.
	SplitMapping = core.SplitMapping
	// Evaluation is the period/throughput breakdown of a mapping.
	Evaluation = core.Evaluation
	// Evaluator is the stateful incremental evaluation engine
	// (Assign/Unassign/Best, plus the native Swap/Relocate move kernels)
	// used by the search loops.
	Evaluator = core.Evaluator
	// Pricer is the pricing-only evaluation mode for root-first LIFO
	// searches: O(1) loads and maximum, bit-exact backtracking, none of
	// the Evaluator's ledger machinery. The exact branch and bound runs
	// on it.
	Pricer = core.Pricer
	// SplitEvaluator is the incremental engine for fractional mappings
	// (SetShares/Best), the EvaluateSplit counterpart of Evaluator.
	SplitEvaluator = core.SplitEvaluator
	// Rule selects the mapping constraint.
	Rule = core.Rule
	// GenParams configures random instance generation.
	GenParams = gen.Params
	// SimOptions configures a discrete-event run.
	SimOptions = sim.Options
	// SimStats is the outcome of a simulation.
	SimStats = sim.Stats
	// ExpConfig scales an experiment campaign.
	ExpConfig = experiments.Config
	// ExpResult is one regenerated figure.
	ExpResult = experiments.Result
	// ExactOptions configures the DFS branch and bound (rule, budgets,
	// warm start, Workers for the parallel root split, ablation switches).
	ExactOptions = exact.Options
	// ExactResult is the branch and bound outcome: mapping, period, the
	// Proven flag and the explored node count.
	ExactResult = exact.Result
)

// Mapping rules (paper §4.2).
const (
	OneToOne    = core.OneToOne
	Specialized = core.Specialized
	General     = core.GeneralRule
)

// Typed solver errors. Request-facing callers (the mfserve daemon, any
// long-lived embedding) key status codes off these with errors.Is instead
// of string-matching; every facade solve path guarantees "mapping or
// error, never both nil".
var (
	// ErrUnknownSolver is wrapped by Solve when the method name is not
	// registered; the message lists what is.
	ErrUnknownSolver = errors.New("unknown solver")
	// ErrBadBudget rejects negative node/time/worker budgets before a
	// search starts (exact.ErrBadBudget re-exported).
	ErrBadBudget = exact.ErrBadBudget
	// ErrBudgetExhausted means a budget stopped an exact search (or the
	// MIP) before any feasible mapping was found — rare, since warm starts
	// and the greedy dive seed an incumbent (exact.ErrBudgetExhausted
	// re-exported).
	ErrBudgetExhausted = exact.ErrBudgetExhausted
	// ErrInfeasible means the search proved no rule-feasible mapping
	// exists (exact.ErrInfeasible re-exported).
	ErrInfeasible = exact.ErrInfeasible
)

// NewBuilder starts assembling an application.
func NewBuilder() *Builder { return app.NewBuilder() }

// NewChainApplication builds a linear chain with the given task types.
func NewChainApplication(types []TypeID) (*Application, error) { return app.NewChain(types) }

// NewPlatform wraps an execution-time matrix w[i][u] (ms).
func NewPlatform(w [][]float64) (*Platform, error) { return platform.New(w) }

// NewFailureMatrix wraps a loss-probability matrix f[i][u] in [0,1).
func NewFailureMatrix(f [][]float64) (*FailureMatrix, error) { return failure.New(f) }

// NewInstance validates and bundles the three model parts.
func NewInstance(a *Application, p *Platform, f *FailureMatrix) (*Instance, error) {
	return core.NewInstance(a, p, f)
}

// CampaignParams returns the paper's standard random-campaign parameters
// (w in [100,1000] ms, f in [0.5%,2%]) for n tasks of p types on m
// machines.
func CampaignParams(n, p, m int) GenParams { return gen.Default(n, p, m) }

// GenerateChain draws a random linear-chain instance.
func GenerateChain(pr GenParams, seed int64) (*Instance, error) {
	return gen.Chain(pr, gen.RNG(seed))
}

// GenerateInTree draws a random in-tree instance with the given number of
// branches merged by a final assembly task.
func GenerateInTree(pr GenParams, branches int, seed int64) (*Instance, error) {
	return gen.InTree(pr, branches, gen.RNG(seed))
}

// Heuristics lists the registered heuristic names (the paper's six plus
// the H2r ablation).
func Heuristics() []string { return heuristics.Names() }

// solverFunc is a registered facade solver.
type solverFunc func(in *Instance, seed int64) (*Mapping, error)

// solverRegistry holds the non-heuristic solvers by method name; Solve
// falls back to the heuristics registry for anything else. Keeping the
// two registries separate lets heuristics self-register (H2r does) while
// the facade owns the solver wiring.
var solverRegistry = map[string]solverFunc{
	"MIP":        solveMIP,
	"mip":        solveMIP,
	"exact":      solveExact,
	"oto":        solveOTO,
	"oto-greedy": func(in *Instance, _ int64) (*Mapping, error) { return oto.Greedy(in) },
	"ls":         solveLS,
	"anneal":     solveAnneal,
}

// Solvers lists every method Solve accepts: the registered solvers plus
// the heuristics, in a stable order.
func Solvers() []string {
	seen := map[string]bool{"mip": true} // fold the MIP alias
	var out []string
	for name := range solverRegistry {
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	out = append(out, heuristics.Names()...)
	sort.Strings(out)
	return out
}

func solveMIP(in *Instance, _ int64) (*Mapping, error) {
	warm, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		warm = nil
	}
	res, err := milp.Solve(in, milp.Options{
		Rule:      core.Specialized,
		WarmStart: warm,
		TimeLimit: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	if res.Mapping == nil {
		return nil, fmt.Errorf("microfab: MIP: %w", ErrBudgetExhausted)
	}
	return res.Mapping, nil
}

func solveExact(in *Instance, _ int64) (*Mapping, error) {
	res, err := SolveExact(in, ExactOptions{
		Rule:      core.Specialized,
		TimeLimit: 30 * time.Second,
		Workers:   runtime.GOMAXPROCS(0),
		WarmStart: true,
	})
	if err != nil {
		return nil, err
	}
	if res.Mapping == nil {
		return nil, fmt.Errorf("microfab: exact: %w", ErrBudgetExhausted)
	}
	return res.Mapping, nil
}

// SolveExact runs the DFS branch and bound with full control over its
// options: rule, node/time budgets, warm-start incumbents (an explicit
// Incumbent and/or the H4w WarmStart), the parallel root split (Workers),
// and the pruning/ordering ablations. The search prices through the
// pricing-only core.Pricer and visits children best-first after a greedy
// restart dive, so even budget-starved runs return near-optimal
// incumbents; hard searches additionally engage tiered relaxation bounds
// (bottleneck assignment + warm-started LP, ablatable via
// DisableAssignBound/DisableLPBound) that shrink proofs without ever
// changing the proven result. Proven results are byte-identical for any
// worker count; see exact.Options for the budget caveats. Solve("exact")
// is the convenience form (Specialized rule, 30s budget, all CPUs, H4w
// warm start).
func SolveExact(in *Instance, opts ExactOptions) (*ExactResult, error) {
	return exact.Solve(in, opts)
}

func solveOTO(in *Instance, _ int64) (*Mapping, error) {
	if mp, err := oto.OptimalTaskOnly(in); err == nil {
		return mp, nil
	}
	return oto.OptimalChainHomogeneous(in)
}

// solveLS is the hill-climbing solver: an H4w seed refined by steepest
// descent over the relocate/swap/group neighborhood (internal/search),
// plus deterministic multi-start restarts from the other constructive
// heuristics so high-failure-regime descents escape deep local optima.
// Fully deterministic; the seed argument is unused (the restart streams
// derive from a fixed facade key, so "ls" stays seed-independent).
func solveLS(in *Instance, _ int64) (*Mapping, error) {
	base, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		return nil, err
	}
	opt := search.DefaultOptions()
	opt.Restarts = 4
	opt.RestartSeed = gen.StringSeed("microfab/ls-restarts")
	res, err := search.HillClimb(in, base, opt)
	if err != nil {
		return nil, err
	}
	return res.Mapping, nil
}

// solveAnneal is the simulated-annealing solver: an H4w seed refined by
// annealing driven by the given seed's RNG stream. Deterministic for a
// fixed seed; the result is never worse than the H4w start.
func solveAnneal(in *Instance, seed int64) (*Mapping, error) {
	base, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		return nil, err
	}
	opt := search.DefaultOptions()
	opt.Iters = 200 * in.N()
	res, err := search.Anneal(in, base, gen.RNG(seed), opt)
	if err != nil {
		return nil, err
	}
	return res.Mapping, nil
}

// Solve runs the named method on the instance and returns its mapping.
//
// Methods: the heuristics "H1".."H4f" and "H2r" (specialized rule); "MIP"
// — the exact mixed-integer program, warm-started with H4w, 30 s budget;
// "exact" — the DFS branch and bound (lower-bound pruned, parallel over
// all CPUs, 30 s budget; use SolveExact for full control); "oto" — the optimal
// one-to-one mapping (requires task-only failures or a homogeneous
// platform chain); "oto-greedy" — the polynomial one-to-one fallback;
// "ls" — hill climbing from an H4w seed; "anneal" — simulated annealing
// from an H4w seed. The seed matters for "H1" and "anneal".
func Solve(in *Instance, method string, seed int64) (*Mapping, error) {
	if f, ok := solverRegistry[method]; ok {
		return f(in, seed)
	}
	h, err := heuristics.Get(method)
	if err != nil {
		return nil, fmt.Errorf("microfab: %w %q (have %v)", ErrUnknownSolver, method, Solvers())
	}
	return h.Fn(in, gen.RNG(seed), heuristics.Options{})
}

// Polish refines a complete rule-respecting mapping with a bounded
// local-search post-pass: strategy "ls" (first-improvement hill climbing,
// deterministic) or "anneal" (simulated annealing seeded by seed). budget
// bounds the work (moves priced for "ls", proposals for "anneal"; 0 =
// default). The result is never worse than the input. rule must be the
// rule the mapping satisfies (the paper's solvers produce Specialized
// mappings; "oto" mappings satisfy OneToOne and Specialized both).
func Polish(in *Instance, m *Mapping, strategy string, rule Rule, seed int64, budget int) (*Mapping, error) {
	res, err := search.Polish(in, m, strategy, rule, gen.RNG(seed), budget)
	if err != nil {
		return nil, err
	}
	return res.Mapping, nil
}

// SolveSplit runs the divisible-task extension (H4w refined by workload
// splitting) and returns the fractional mapping.
func SolveSplit(in *Instance) (*SplitMapping, error) {
	return heuristics.H4wSplit(in, nil, heuristics.Options{})
}

// Evaluate computes the period, throughput, per-machine loads and product
// counts of a complete mapping.
func Evaluate(in *Instance, m *Mapping) (*Evaluation, error) { return core.Evaluate(in, m) }

// NewEvaluator returns an incremental evaluation engine over the instance
// with every task unassigned. Assign/Unassign maintain product counts and
// machine periods in O(changed subtree) per step, only marking the maximum
// stale; Best reads the current (period, critical machine) by flushing
// each stale machine into a tournament tree in O(log m) — O(1) when
// nothing changed. Search loops use it to price candidates without
// re-evaluating from scratch.
func NewEvaluator(in *Instance) *Evaluator { return core.NewEvaluator(in) }

// NewEvaluatorFrom returns an incremental evaluation engine preloaded with
// the (possibly partial) mapping.
func NewEvaluatorFrom(in *Instance, m *Mapping) (*Evaluator, error) {
	return core.NewEvaluatorFrom(in, m)
}

// NewPricer returns the pricing-only evaluation mode over the instance:
// per-machine loads and the running maximum maintained in O(1) per
// Assign/Unassign with bit-exact backtracking, for root-first LIFO search
// loops (the exact branch and bound runs on one). Use NewEvaluator when
// tasks are (un)assigned in arbitrary order or moved in place — the
// Pricer trades that generality for the leaner hot loop.
func NewPricer(in *Instance) *Pricer { return core.NewPricer(in) }

// EvaluateSplit evaluates a fractional mapping.
func EvaluateSplit(in *Instance, s *SplitMapping) (*Evaluation, error) {
	return core.EvaluateSplit(in, s)
}

// NewSplitEvaluator returns an incremental evaluation engine loaded with
// the complete fractional mapping: SetShares reprices a share change in
// O(changed prefix) instead of EvaluateSplit's full O(n·m) sweep. The
// water-filling refinement of H4wSplit runs on it.
func NewSplitEvaluator(in *Instance, s *SplitMapping) (*SplitEvaluator, error) {
	return core.NewSplitEvaluator(in, s)
}

// PlanInputs returns the expected raw products each source must receive so
// that xout finished products leave the system.
func PlanInputs(in *Instance, m *Mapping, xout float64) (*core.InputPlan, error) {
	return core.PlanInputs(in, m, xout)
}

// Simulate runs the discrete-event micro-factory on a mapped instance.
func Simulate(in *Instance, m *Mapping, opt SimOptions) (*SimStats, error) {
	return sim.Run(in, m, opt)
}

// PlanBatches sizes raw-product batches for a target output with a safety
// margin (e.g. 1.1).
func PlanBatches(in *Instance, m *Mapping, xout, margin float64) ([]int64, error) {
	return sim.PlanBatches(in, m, xout, margin)
}

// MeasureThroughput estimates the steady-state empirical throughput
// (products per ms) of a mapped instance by simulation.
func MeasureThroughput(in *Instance, m *Mapping, outputs int64, warmupFrac float64, seed int64) (float64, error) {
	return sim.MeasureThroughput(in, m, outputs, warmupFrac, seed)
}

// Figure regenerates one of the paper's evaluation figures (5..12). The
// campaign fans its (point, draw) work items out over cfg.Workers
// goroutines; the result is byte-identical for any worker count unless a
// wall-clock solver budget binds on the MIP figures (see
// internal/experiments for the caveat).
func Figure(num int, cfg ExpConfig) (*ExpResult, error) { return experiments.Figure(num, cfg) }

// FigureCtx is Figure with cancellation: the campaign stops at the next
// draw boundary once ctx is done.
func FigureCtx(ctx context.Context, num int, cfg ExpConfig) (*ExpResult, error) {
	return experiments.FigureCtx(ctx, num, cfg)
}

// RenderFigure formats a regenerated figure as an aligned text table.
func RenderFigure(r *ExpResult) string { return experiments.Render(r) }
