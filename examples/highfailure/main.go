// High-failure regime: the Figure 8 setting (f up to 10%) scaled to one
// instance. Long chains under high failure rates inflate the product
// counts x[i] exponentially toward the chain head, so mapping choices are
// dramatized: this example contrasts all heuristics, shows the x blow-up,
// and demonstrates the divisible-task extension (H4wSplit) recovering
// throughput by splitting the overloaded stages across machines.
//
// Run with: go run ./examples/highfailure
package main

import (
	"fmt"
	"log"

	microfab "microfab"
)

func main() {
	// m > 2p leaves slack machines so the divisible-task extension below
	// has legal splits to exploit (a singleton type group cannot be
	// split under the specialization rule).
	pr := microfab.CampaignParams(40, 5, 14)
	pr.FMin, pr.FMax = 0.0, 0.10 // the paper's high-failure campaign
	in, err := microfab.GenerateChain(pr, 2010)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("instance    :", in.App, "on", in.M(), "machines, f in [0,10%]")

	fmt.Println("\nheuristic comparison (specialized mappings):")
	var h4w *microfab.Mapping
	for _, h := range []string{"H1", "H2", "H2r", "H3", "H4", "H4w", "H4f"} {
		mp, err := microfab.Solve(in, h, 1)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := microfab.Evaluate(in, mp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s period %9.1f ms  throughput %.5f/s\n", h, ev.Period, ev.Throughput*1000)
		if h == "H4w" {
			h4w = mp
		}
	}

	// The x[i] blow-up along the chain: products needed per finished one.
	ev, err := microfab.Evaluate(in, h4w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproduct inflation under H4w: head x[0]=%.2f, mid x[%d]=%.2f, tail x[%d]=%.2f\n",
		ev.ProductCounts[0], in.N()/2, ev.ProductCounts[in.N()/2], in.N()-1, ev.ProductCounts[in.N()-1])
	plan, err := microfab.PlanInputs(in, h4w, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw products for 100 finished: %.0f\n", plan.Total)

	// Future-work extension: divide task workloads across machines.
	sp, err := microfab.SolveSplit(in)
	if err != nil {
		log.Fatal(err)
	}
	evs, err := microfab.EvaluateSplit(in, sp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndivisible tasks (H4wSplit): period %.1f ms vs %.1f ms integral — %.1f%% gain\n",
		evs.Period, ev.Period, 100*(1-evs.Period/ev.Period))

	// Validate the analytic model against the stochastic simulator.
	thr, err := microfab.MeasureThroughput(in, h4w, 2000, 0.2, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated steady throughput: %.6f/ms (analytic %.6f/ms, ratio %.3f)\n",
		thr, ev.Throughput, thr/ev.Throughput)
}
