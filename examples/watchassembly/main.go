// Watch assembly: an in-tree workload in the spirit of the paper's
// micro-factory motivation. Two sub-assemblies — a gear train and a case —
// are produced on separate branches and merged by a final assembly task;
// physical products cannot be duplicated, so the graph joins but never
// forks. The example maps the tree, verifies the join arithmetic (each
// finished watch consumes one product from every branch) and runs the
// discrete-event simulator to watch real losses.
//
// Run with: go run ./examples/watchassembly
package main

import (
	"fmt"
	"log"

	microfab "microfab"
)

const (
	tyMill    microfab.TypeID = 0 // micro-milling
	tyPress   microfab.TypeID = 1 // press-fitting
	tyGlue    microfab.TypeID = 2 // adhesive bonding
	tyInspect microfab.TypeID = 3 // optical inspection
)

func main() {
	b := microfab.NewBuilder()
	// Branch 1: gear train — mill, press, inspect.
	gearMill := b.AddTask(tyMill, "mill-gears")
	gearFit := b.AddTask(tyPress, "fit-gears")
	gearOK := b.AddTask(tyInspect, "inspect-gears")
	b.AddDep(gearMill, gearFit)
	b.AddDep(gearFit, gearOK)
	// Branch 2: case — mill, glue crystal.
	caseMill := b.AddTask(tyMill, "mill-case")
	caseGlue := b.AddTask(tyGlue, "glue-crystal")
	b.AddDep(caseMill, caseGlue)
	// Join: drop the gear train into the case, then final inspection.
	assemble := b.Join(tyPress, "assemble", gearOK, caseGlue)
	final := b.AddTask(tyInspect, "final-inspection")
	b.AddDep(assemble, final)

	app, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("application :", app, "— sources:", app.Sources())

	// Five cells. Times per type (ms): the milling cell is fast at
	// milling, the bonding cell at gluing, and so on.
	typeTimes := map[microfab.TypeID][]float64{
		tyMill:    {150, 700, 650, 800, 500},
		tyPress:   {600, 200, 550, 650, 450},
		tyGlue:    {900, 800, 250, 700, 600},
		tyInspect: {500, 450, 600, 180, 400},
	}
	w := make([][]float64, app.NumTasks())
	for i := 0; i < app.NumTasks(); i++ {
		w[i] = typeTimes[app.Type(microfab.TaskID(i))]
	}
	plat, err := microfab.NewPlatform(w)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"millbot", "pressbot", "gluebot", "visionbot", "flexbot"}
	for u, n := range names {
		plat.SetName(microfab.MachineID(u), n)
	}

	// Electrostatic pick-up losses: higher on fiddly press-fits, lower
	// on inspection. Rates attached to (task, machine).
	f := make([][]float64, app.NumTasks())
	base := map[microfab.TypeID]float64{tyMill: 0.01, tyPress: 0.04, tyGlue: 0.02, tyInspect: 0.005}
	for i := 0; i < app.NumTasks(); i++ {
		f[i] = make([]float64, 5)
		for u := range f[i] {
			// Each machine's clumsiness scales the type's base rate.
			f[i][u] = base[app.Type(microfab.TaskID(i))] * (0.5 + float64((i+u)%3))
		}
	}
	fail, err := microfab.NewFailureMatrix(f)
	if err != nil {
		log.Fatal(err)
	}
	in, err := microfab.NewInstance(app, plat, fail)
	if err != nil {
		log.Fatal(err)
	}

	// Compare the heuristics on this tree, then keep the best.
	best, bestName := "", ""
	var bestMap *microfab.Mapping
	bestPeriod := 0.0
	for _, h := range []string{"H1", "H2", "H3", "H4", "H4w", "H4f"} {
		mp, err := microfab.Solve(in, h, 42)
		if err != nil {
			log.Fatal(err)
		}
		ev, err := microfab.Evaluate(in, mp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s period %7.1f ms\n", h, ev.Period)
		if bestMap == nil || ev.Period < bestPeriod {
			bestMap, bestPeriod, bestName = mp, ev.Period, h
		}
		_ = best
	}
	fmt.Printf("best        : %s at %.1f ms\n", bestName, bestPeriod)

	// Input plan: a join consumes one unit from each branch, so both
	// sources must be fed.
	plan, err := microfab.PlanInputs(in, bestMap, 500)
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range plan.PerSource {
		fmt.Printf("source %d    : feed %.1f raw products for 500 watches\n", k, v)
	}

	// Simulate the factory: real Bernoulli losses, join buffers, FIFO
	// cells.
	batches, err := microfab.PlanBatches(in, bestMap, 500, 1.25)
	if err != nil {
		log.Fatal(err)
	}
	st, err := microfab.Simulate(in, bestMap, microfab.SimOptions{Inputs: batches, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated   : %d watches out of batches %v in %.0f s\n",
		st.Outputs, batches, st.Time/1000)
	fmt.Printf("throughput  : %.4f watches/s simulated vs %.4f analytic\n",
		st.Throughput*1000, 1/bestPeriod*1000)
}
