// Solver comparison: on paper-sized small instances (the Figure 10/12
// regime), run every heuristic, the exact DFS search, and the MIP with a
// heuristic warm start, and report each method's distance from the proven
// optimum — the reproduction of the paper's "H4w is at factor 1.33 from
// the MIP" analysis, one instance at a time.
//
// Run with: go run ./examples/solvercompare
package main

import (
	"fmt"
	"log"
	"time"

	microfab "microfab"
)

func main() {
	for _, size := range []struct{ n, p, m int }{
		{8, 2, 5},
		{12, 4, 9},
	} {
		in, err := microfab.GenerateChain(microfab.CampaignParams(size.n, size.p, size.m), 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s on %d machines ===\n", in.App, in.M())

		// Exact optimum via the independent DFS search.
		t0 := time.Now()
		opt, err := microfab.Solve(in, "exact", 0)
		if err != nil {
			log.Fatal(err)
		}
		evOpt, err := microfab.Evaluate(in, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s period %8.1f ms                (in %v)\n",
			"exact", evOpt.Period, time.Since(t0).Round(time.Millisecond))

		// The paper's MIP (our simplex + branch and bound), warm-started.
		t0 = time.Now()
		mipMap, err := microfab.Solve(in, "MIP", 0)
		if err != nil {
			log.Fatal(err)
		}
		evMIP, err := microfab.Evaluate(in, mipMap)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s period %8.1f ms  factor %.3f  (in %v)\n",
			"MIP", evMIP.Period, evMIP.Period/evOpt.Period, time.Since(t0).Round(time.Millisecond))

		for _, h := range []string{"H1", "H2", "H3", "H4", "H4w", "H4f"} {
			mp, err := microfab.Solve(in, h, 3)
			if err != nil {
				log.Fatal(err)
			}
			ev, err := microfab.Evaluate(in, mp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-6s period %8.1f ms  factor %.3f\n", h, ev.Period, ev.Period/evOpt.Period)
		}
		fmt.Println()
	}
}
