// Quickstart: build a small micro-factory problem by hand, map it with the
// paper's best heuristic (H4w), inspect the result and check it against
// the exact optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	microfab "microfab"
)

func main() {
	// A five-task linear chain with three operation types, as in the
	// paper's running examples: t(1)=t(3)=t(5)=1 and t(2)=t(4)=2 (0-based
	// here: types 0 and 1), plus a final inspection type.
	app, err := microfab.NewChainApplication([]microfab.TypeID{0, 1, 0, 1, 2})
	if err != nil {
		log.Fatal(err)
	}

	// Four machines. Tasks of the same type share execution times on a
	// machine (same physical operation), so rows repeat per type.
	// Times in ms.
	typeTimes := [][]float64{
		{120, 250, 400, 300}, // type 0: e.g. pick-and-place
		{500, 180, 350, 420}, // type 1: e.g. gluing
		{200, 200, 150, 600}, // type 2: e.g. inspection
	}
	w := make([][]float64, app.NumTasks())
	for i := 0; i < app.NumTasks(); i++ {
		w[i] = typeTimes[app.Type(microfab.TaskID(i))]
	}
	plat, err := microfab.NewPlatform(w)
	if err != nil {
		log.Fatal(err)
	}

	// Failure rates attached to the (task, machine) couple — the paper's
	// model. A machine can be fast but clumsy on a given operation.
	f := [][]float64{
		{0.010, 0.020, 0.005, 0.015},
		{0.020, 0.008, 0.012, 0.030},
		{0.010, 0.020, 0.005, 0.015},
		{0.020, 0.008, 0.012, 0.030},
		{0.002, 0.004, 0.050, 0.001},
	}
	fail, err := microfab.NewFailureMatrix(f)
	if err != nil {
		log.Fatal(err)
	}

	in, err := microfab.NewInstance(app, plat, fail)
	if err != nil {
		log.Fatal(err)
	}

	// Map with H4w — the paper's winner: pick fast machines, ignore
	// failure rates in the choice ("if we produce fast enough we
	// overcome the faults").
	mp, err := microfab.Solve(in, "H4w", 0)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := microfab.Evaluate(in, mp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("H4w mapping :", mp)
	fmt.Printf("period      : %.1f ms  (throughput %.2f products/s)\n",
		ev.Period, ev.Throughput*1000)
	for i, x := range ev.ProductCounts {
		fmt.Printf("  task T%d starts %.3f products per finished one\n", i+1, x)
	}

	// How many raw products to feed in for 1000 finished ones?
	plan, err := microfab.PlanInputs(in, mp, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inputs      : %.0f raw products for 1000 finished\n", plan.Total)

	// Compare with the exact optimum (this instance is tiny).
	opt, err := microfab.Solve(in, "exact", 0)
	if err != nil {
		log.Fatal(err)
	}
	evOpt, err := microfab.Evaluate(in, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimum     : %.1f ms — H4w is at factor %.3f\n",
		evOpt.Period, ev.Period/evOpt.Period)
}
