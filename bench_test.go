// Benchmarks regenerating the paper's evaluation (one per figure) plus
// ablation benches for the design choices called out in DESIGN.md.
//
// Each figure bench runs its campaign at a reduced draw count (benchmarks
// must stay minutes, not hours; cmd/mfexp runs paper-scale campaigns) and
// reports the mean H4w period of the last x-point as a custom metric, so
// regressions in either speed or solution quality are visible.
//
// Run with: go test -bench=. -benchmem
package microfab_test

import (
	"testing"
	"time"

	microfab "microfab"
	"microfab/internal/core"
	"microfab/internal/experiments"
	"microfab/internal/gen"
	"microfab/internal/heuristics"
	"microfab/internal/sim"
)

// benchFigure runs one figure campaign per iteration and reports the mean
// period (ms) of the reference series at the last point.
func benchFigure(b *testing.B, num int, cfg experiments.Config, refSeries string) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure(num, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
		// Report the reference series at the last point carrying data
		// (MIP figures legitimately leave budget-exceeded points empty).
		for k := len(r.Points) - 1; k >= 0; k-- {
			if s, ok := r.Points[k].Series[refSeries]; ok && s.N > 0 {
				last = s.Mean
				break
			}
		}
	}
	b.ReportMetric(last, "ms_"+refSeries)
}

func BenchmarkFig05(b *testing.B) {
	benchFigure(b, 5, experiments.Config{Draws: 3, Thin: 2, Seed: 1}, "H4w")
}

func BenchmarkFig06(b *testing.B) {
	benchFigure(b, 6, experiments.Config{Draws: 3, Thin: 2, Seed: 1}, "H4w")
}

func BenchmarkFig07(b *testing.B) {
	benchFigure(b, 7, experiments.Config{Draws: 3, Thin: 2, Seed: 1}, "H4w")
}

func BenchmarkFig08(b *testing.B) {
	benchFigure(b, 8, experiments.Config{Draws: 3, Thin: 2, Seed: 1}, "H2")
}

func BenchmarkFig09(b *testing.B) {
	benchFigure(b, 9, experiments.Config{Draws: 3, Thin: 2, Seed: 1}, "OtO")
}

// The MIP figures are bounded tightly: few draws, thin grids, short exact
// budgets. They still exercise the full simplex + branch-and-bound path.
func BenchmarkFig10(b *testing.B) {
	benchFigure(b, 10, experiments.Config{Draws: 2, Thin: 4, Seed: 1, MIPTimeLimit: 3 * time.Second}, "MIP")
}

func BenchmarkFig11(b *testing.B) {
	benchFigure(b, 11, experiments.Config{Draws: 2, Thin: 4, Seed: 1, MIPTimeLimit: 3 * time.Second}, "H4w")
}

func BenchmarkFig12(b *testing.B) {
	benchFigure(b, 12, experiments.Config{Draws: 2, Thin: 5, Seed: 1, MIPTimeLimit: 3 * time.Second}, "H4w")
}

// --- Sequential vs parallel engine ---------------------------------------

// benchFigureWorkers reruns a heuristic-only campaign with a fixed worker
// count. Compare the Sequential/Parallel pairs to see the experiment
// engine's scaling on your hardware; the outputs are byte-identical by
// construction, only the wall time changes.
func benchFigureWorkers(b *testing.B, num, workers int) {
	b.Helper()
	cfg := experiments.Config{Draws: 6, Thin: 2, Seed: 1, Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure(num, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig05Sequential(b *testing.B) { benchFigureWorkers(b, 5, 1) }
func BenchmarkFig05Parallel(b *testing.B)   { benchFigureWorkers(b, 5, 0) }
func BenchmarkFig09Sequential(b *testing.B) { benchFigureWorkers(b, 9, 1) }
func BenchmarkFig09Parallel(b *testing.B)   { benchFigureWorkers(b, 9, 0) }

// --- Ablations -----------------------------------------------------------

// benchHeuristic measures one heuristic on a fixed mid-size instance and
// reports its achieved period.
func benchHeuristic(b *testing.B, name string, n, p, m int) {
	b.Helper()
	in, err := gen.Chain(gen.Default(n, p, m), gen.RNG(99))
	if err != nil {
		b.Fatal(err)
	}
	h, err := heuristics.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	var period float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mp, err := h.Fn(in, gen.RNG(1), heuristics.Options{})
		if err != nil {
			b.Fatal(err)
		}
		period = core.Period(in, mp)
	}
	b.ReportMetric(period, "ms_period")
}

func BenchmarkHeuristicH1(b *testing.B)  { benchHeuristic(b, "H1", 100, 5, 20) }
func BenchmarkHeuristicH2(b *testing.B)  { benchHeuristic(b, "H2", 100, 5, 20) }
func BenchmarkHeuristicH2r(b *testing.B) { benchHeuristic(b, "H2r", 100, 5, 20) }
func BenchmarkHeuristicH3(b *testing.B)  { benchHeuristic(b, "H3", 100, 5, 20) }
func BenchmarkHeuristicH4(b *testing.B)  { benchHeuristic(b, "H4", 100, 5, 20) }
func BenchmarkHeuristicH4w(b *testing.B) { benchHeuristic(b, "H4w", 100, 5, 20) }
func BenchmarkHeuristicH4f(b *testing.B) { benchHeuristic(b, "H4f", 100, 5, 20) }

// BenchmarkAblationSplit compares the divisible-task extension against the
// plain integral H4w (DESIGN.md §4): the reported metric is the split
// mapping's period; compare with BenchmarkHeuristicH4wRoomy's.
func BenchmarkAblationSplit(b *testing.B) {
	pr := gen.Default(40, 5, 14)
	pr.FMin, pr.FMax = 0, 0.10
	in, err := gen.Chain(pr, gen.RNG(2010))
	if err != nil {
		b.Fatal(err)
	}
	var period float64
	for i := 0; i < b.N; i++ {
		sp, err := heuristics.H4wSplit(in, nil, heuristics.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ev, err := core.EvaluateSplit(in, sp)
		if err != nil {
			b.Fatal(err)
		}
		period = ev.Period
	}
	b.ReportMetric(period, "ms_period")
}

// BenchmarkHeuristicH4wRoomy is the integral baseline for AblationSplit on
// the identical instance.
func BenchmarkHeuristicH4wRoomy(b *testing.B) {
	pr := gen.Default(40, 5, 14)
	pr.FMin, pr.FMax = 0, 0.10
	in, err := gen.Chain(pr, gen.RNG(2010))
	if err != nil {
		b.Fatal(err)
	}
	var period float64
	for i := 0; i < b.N; i++ {
		mp, err := heuristics.H4w(in, nil, heuristics.Options{})
		if err != nil {
			b.Fatal(err)
		}
		period = core.Period(in, mp)
	}
	b.ReportMetric(period, "ms_period")
}

// BenchmarkAblationGeneralReconfig sweeps the reconfiguration-cost knob of
// the general-mapping greedy at a representative value, reporting the
// effective period including the penalty (DESIGN.md §4).
func BenchmarkAblationGeneralReconfig(b *testing.B) {
	in, err := gen.Chain(gen.Default(30, 4, 8), gen.RNG(17))
	if err != nil {
		b.Fatal(err)
	}
	var period float64
	for i := 0; i < b.N; i++ {
		mp, err := heuristics.GeneralH4w(in, 200)
		if err != nil {
			b.Fatal(err)
		}
		ev, err := core.ReconfigEvaluate(in, mp, 200)
		if err != nil {
			b.Fatal(err)
		}
		period = ev.Period
	}
	b.ReportMetric(period, "ms_period")
}

// BenchmarkSimulator measures the discrete-event engine's event rate on a
// mapped chain (substrate performance, not in the paper).
func BenchmarkSimulator(b *testing.B) {
	in, err := gen.Chain(gen.Default(20, 4, 8), gen.RNG(5))
	if err != nil {
		b.Fatal(err)
	}
	mp, err := heuristics.H4w(in, nil, heuristics.Options{})
	if err != nil {
		b.Fatal(err)
	}
	batches, err := sim.PlanBatches(in, mp, 200, 1.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		st, err := sim.Run(in, mp, sim.Options{Inputs: batches, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		events = st.Events
	}
	b.ReportMetric(float64(events), "events/run")
}

// BenchmarkMIPSolve measures one exact solve end to end (model build,
// simplex, branch and bound) at the paper's Figure 10 scale.
func BenchmarkMIPSolve(b *testing.B) {
	in, err := gen.Chain(gen.Default(7, 2, 5), gen.RNG(123))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mp, err := microfab.Solve(in, "MIP", 0)
		if err != nil {
			b.Fatal(err)
		}
		if !mp.Complete() {
			b.Fatal("incomplete MIP mapping")
		}
	}
}

// BenchmarkOptimalOneToOne measures the Figure 9 baseline (bottleneck
// assignment on a 100x100 problem).
func BenchmarkOptimalOneToOne(b *testing.B) {
	pr := gen.Default(100, 20, 100)
	pr.TaskOnlyFailures = true
	in, err := gen.Chain(pr, gen.RNG(31))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := microfab.Solve(in, "oto", 0); err != nil {
			b.Fatal(err)
		}
	}
}
